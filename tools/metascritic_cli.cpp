// metascritic_cli: run the full pipeline from the command line and export
// the inferred topology as CSV -- the workflow a downstream consumer of the
// real system would script.
//
// Usage:
//   metascritic_cli [--seed N] [--metro NAME|--all-metros] [--scale small|paper]
//                   [--threshold X|auto] [--out DIR] [--quiet]
//                   [--fault-profile none|flaky|storm] [--no-resilience]
//
// Writes per-metro <out>/<metro>_links.csv, <metro>_ratings.csv, and
// <metro>_measurements.csv, and prints a summary table. With a non-trivial
// fault profile the summary also reports how the measurement plane degraded
// (row fill achieved, probes lost to faults, retries, quarantined VPs).
// With --telemetry PATH a snapshot of the process-wide metrics registry
// (counters, gauges, histograms, span tree; see DESIGN.md §8) is written
// after the run in JSON (default) or flat CSV.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "eval/export.hpp"
#include "eval/metrics.hpp"
#include "eval/world.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

struct CliOptions {
  std::uint64_t seed = 42;
  std::string metro;       // empty = first focus metro
  bool all_metros = false;
  std::string scale = "small";
  double threshold = -2.0;  // -2 = auto (pipeline's F-max lambda)
  std::string out_dir = "metascritic_out";
  bool quiet = false;
  metas::traceroute::FaultProfile faults;  // default: none (inert)
  bool resilience = true;
  std::string telemetry_path;  // empty = no snapshot
  metas::util::telemetry::Format telemetry_format =
      metas::util::telemetry::Format::kJson;
};

void usage() {
  std::cout <<
      "usage: metascritic_cli [--seed N] [--metro NAME | --all-metros]\n"
      "                       [--scale small|paper] [--threshold X|auto]\n"
      "                       [--out DIR] [--quiet]\n"
      "                       [--fault-profile none|flaky|storm] [--no-resilience]\n"
      "                       [--telemetry PATH] [--telemetry-format json|csv]\n";
}

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    auto next = [&]() -> const char* {
      return k + 1 < argc ? argv[++k] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--metro") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metro = v;
    } else if (arg == "--all-metros") {
      opt.all_metros = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr || (std::string(v) != "small" && std::string(v) != "paper"))
        return false;
      opt.scale = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::string(v) != "auto") opt.threshold = std::strtod(v, nullptr);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.out_dir = v;
    } else if (arg == "--fault-profile") {
      const char* v = next();
      if (v == nullptr || !metas::traceroute::parse_fault_profile(v, opt.faults))
        return false;
    } else if (arg == "--telemetry") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.telemetry_path = v;
    } else if (arg == "--telemetry-format") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string fmt = v;
      if (fmt == "json")
        opt.telemetry_format = metas::util::telemetry::Format::kJson;
      else if (fmt == "csv")
        opt.telemetry_format = metas::util::telemetry::Format::kCsv;
      else
        return false;
    } else if (arg == "--no-resilience") {
      opt.resilience = false;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metas;
  CliOptions opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }

  eval::WorldConfig wc = opt.scale == "paper"
                             ? eval::paper_world_config(opt.seed)
                             : eval::small_world_config(opt.seed);
  wc.faults = opt.faults;
  wc.resilience.enabled = opt.resilience;
  if (!opt.quiet) std::cout << "building world (seed " << opt.seed << ")...\n";
  eval::World world = eval::build_world(wc);

  // Select metros.
  std::vector<topology::MetroId> metros;
  if (opt.all_metros) {
    metros = world.focus_metros;
  } else if (!opt.metro.empty()) {
    for (const auto& m : world.net.metros)
      if (m.name == opt.metro) metros.push_back(m.id);
    if (metros.empty()) {
      std::cerr << "error: unknown metro '" << opt.metro << "'. Focus metros:";
      for (auto m : world.focus_metros)
        std::cerr << ' ' << world.net.metros[static_cast<std::size_t>(m)].name;
      std::cerr << '\n';
      return 1;
    }
  } else {
    metros.push_back(world.focus_metros.front());
  }

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create output directory '" << opt.out_dir
              << "': " << ec.message() << '\n';
    return 1;
  }

  util::Table summary({"metro", "ASes", "rank", "traces", "lambda", "links out"});
  util::Table degraded({"metro", "row fill", "faulted", "retries", "requeues",
                        "quarantined", "dead VPs"});
  core::StrategyPriors priors;
  for (auto metro : metros) {
    core::MetroContext ctx(world.net, metro);
    const std::string name =
        world.net.metros[static_cast<std::size_t>(metro)].name;
    if (!opt.quiet) std::cout << "running metAScritic on " << name << "...\n";
    core::PipelineConfig pc;
    pc.scheduler.seed = opt.seed + static_cast<std::uint64_t>(metro) * 3 + 1;
    pc.rank.seed = opt.seed + static_cast<std::uint64_t>(metro) * 3 + 2;
    core::MetascriticPipeline pipeline(ctx, *world.ms, &priors, pc);
    core::PipelineResult result = pipeline.run();
    double lambda = opt.threshold > -1.5 ? opt.threshold : result.threshold;

    auto path = [&](const std::string& kind) {
      return opt.out_dir + "/" + name + "_" + kind + ".csv";
    };
    std::size_t links = 0;
    {
      std::ofstream f(path("links"));
      if (!f) {
        std::cerr << "error: cannot write " << path("links") << '\n';
        return 1;
      }
      eval::export_links_csv(f, ctx, result, lambda);
    }
    {
      std::ofstream f(path("ratings"));
      eval::export_ratings_csv(f, ctx, result);
    }
    {
      std::ofstream f(path("measurements"));
      eval::export_measurement_log_csv(f, ctx, result);
    }
    const int n = static_cast<int>(ctx.size());
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (result.ratings(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j)) >= lambda)
          ++links;
    summary.add_row({name, util::Table::fmt(ctx.size()),
                     util::Table::fmt(result.estimated_rank),
                     util::Table::fmt(result.targeted_traceroutes),
                     util::Table::fmt(lambda, 2), util::Table::fmt(links)});
    const core::DegradationReport& d = result.degradation;
    degraded.add_row({name, util::Table::fmt(d.fill_fraction, 3),
                      util::Table::fmt(d.probes_faulted),
                      util::Table::fmt(d.retries), util::Table::fmt(d.requeues),
                      util::Table::fmt(d.quarantined_vps),
                      util::Table::fmt(d.dead_vps)});
  }
  summary.print(std::cout);
  if (opt.faults.enabled()) {
    std::cout << "measurement-plane degradation (resilience "
              << (opt.resilience ? "on" : "off") << "):\n";
    degraded.print(std::cout);
  }
  if (!opt.quiet)
    std::cout << "CSV outputs written under " << opt.out_dir << "/\n";
  if (!opt.telemetry_path.empty()) {
    if (!util::telemetry::write_snapshot(opt.telemetry_path,
                                         opt.telemetry_format)) {
      std::cerr << "error: cannot write telemetry snapshot to '"
                << opt.telemetry_path << "'\n";
      return 1;
    }
    if (!opt.quiet) {
      std::cout << "telemetry snapshot written to " << opt.telemetry_path;
      if (!util::telemetry::compiled())
        std::cout << " (instrumentation compiled out: core counters only)";
      std::cout << "\n";
    }
  }
  return 0;
}
