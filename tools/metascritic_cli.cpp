// metascritic_cli: run the full pipeline from the command line and export
// the inferred topology as CSV -- the workflow a downstream consumer of the
// real system would script.
//
// Usage:
//   metascritic_cli [--seed N] [--metro NAME|--all-metros] [--scale small|paper]
//                   [--threshold X|auto] [--out DIR] [--quiet]
//                   [--fault-profile none|flaky|storm] [--no-resilience]
//                   [--checkpoint PATH] [--resume PATH] [--deadline-ms N]
//                   [--trace PATH] [--trace-buffer-events N]
//
// Writes per-metro <out>/<metro>_links.csv, <metro>_ratings.csv, and
// <metro>_measurements.csv, and prints a summary table. With a non-trivial
// fault profile the summary also reports how the measurement plane degraded
// (row fill achieved, probes lost to faults, retries, quarantined VPs).
// With --telemetry PATH a snapshot of the process-wide metrics registry
// (counters, gauges, histograms, span tree; see DESIGN.md §8) is written
// after the run in JSON (default) or flat CSV.
//
// Crash safety (DESIGN.md §12): --checkpoint persists a resumable snapshot
// at every rank boundary and metro completion; --resume continues a killed
// or cancelled run from the newest good snapshot, producing exports
// byte-identical to an uninterrupted run with the same flags.  SIGINT /
// SIGTERM and --deadline-ms stop cooperatively: the current work unit
// finishes, a final checkpoint is written, and best-so-far results plus a
// degradation table are emitted instead of a dead process.
//
// Tracing (DESIGN.md §13): --trace PATH arms the per-thread ring-buffer
// flight recorder and writes a Chrome trace-event / Perfetto-compatible
// JSON timeline (span begin/end, instants, counter samples) at the end of
// the run; --trace-buffer-events N bounds the per-thread ring (oldest
// events drop first, counted in the trace header).  While tracing is armed
// every successful checkpoint write also dumps the ring next to the
// checkpoint (<checkpoint>.trace.json), so a killed or cancelled run
// leaves a timeline of its final moments.
#include <csignal>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "eval/export.hpp"
#include "eval/metrics.hpp"
#include "eval/world.hpp"
#include "util/cancel.hpp"
#include "util/checkpoint.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace {

// Tripped (flag-only, async-signal-safe) by SIGINT/SIGTERM; polled by every
// pipeline phase.  File-scope is deliberate: signal handlers cannot receive
// context, and tools/ is outside the src/ mutable-static lint scope.
metas::util::CancelToken g_cancel;

extern "C" void cli_signal_handler(int) { g_cancel.cancel(); }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = &cli_signal_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

struct CliOptions {
  std::uint64_t seed = 42;
  std::string metro;       // empty = first focus metro
  bool all_metros = false;
  std::string scale = "small";
  double threshold = -2.0;  // -2 = auto (pipeline's F-max lambda)
  std::string out_dir = "metascritic_out";
  bool quiet = false;
  metas::traceroute::FaultProfile faults;  // default: none (inert)
  bool resilience = true;
  std::string telemetry_path;  // empty = no snapshot
  metas::util::telemetry::Format telemetry_format =
      metas::util::telemetry::Format::kJson;
  std::string checkpoint_path;  // empty = no checkpointing
  std::string resume_path;      // empty = fresh run
  std::string trace_path;       // empty = no tracing
  std::size_t trace_buffer_events =
      metas::util::trace::kDefaultBufferEvents;
  std::uint64_t deadline_ms = 0;  // 0 = no deadline
  int keep_checkpoints = 3;
  // Test hook for the crash-injection suite: SIGKILL this process right
  // after the Nth checkpoint file hits disk, so the "crash" lands exactly
  // on a checkpoint boundary.  0 disables.
  int crash_after_checkpoints = 0;
};

/// One completed metro's summary numbers, kept as raw values (not table
/// rows) so they serialize into checkpoints and survive a resume.
struct MetroSummary {
  std::string name;
  std::size_t ases = 0;
  int rank = 0;
  std::size_t traces = 0;
  double lambda = 0.0;
  std::size_t links = 0;
  double fill_fraction = 0.0;
  std::size_t probes_faulted = 0;
  std::size_t retries = 0;
  std::size_t requeues = 0;
  std::size_t quarantined = 0;
  std::size_t dead = 0;

  void save(metas::util::checkpoint::Encoder& enc) const {
    enc.str(name);
    enc.u64(ases);
    enc.i32(rank);
    enc.u64(traces);
    enc.f64(lambda);
    enc.u64(links);
    enc.f64(fill_fraction);
    enc.u64(probes_faulted);
    enc.u64(retries);
    enc.u64(requeues);
    enc.u64(quarantined);
    enc.u64(dead);
  }
  void load(metas::util::checkpoint::Decoder& dec) {
    name = dec.str();
    ases = dec.u64();
    rank = dec.i32();
    traces = dec.u64();
    lambda = dec.f64();
    links = dec.u64();
    fill_fraction = dec.f64();
    probes_faulted = dec.u64();
    retries = dec.u64();
    requeues = dec.u64();
    quarantined = dec.u64();
    dead = dec.u64();
  }
};

void usage() {
  std::cout <<
      "usage: metascritic_cli [--seed N] [--metro NAME | --all-metros]\n"
      "                       [--scale small|paper] [--threshold X|auto]\n"
      "                       [--out DIR] [--quiet]\n"
      "                       [--fault-profile none|flaky|storm] [--no-resilience]\n"
      "                       [--telemetry PATH] [--telemetry-format json|csv]\n"
      "                       [--checkpoint PATH] [--resume PATH]\n"
      "                       [--deadline-ms N] [--keep-checkpoints K]\n"
      "                       [--trace PATH] [--trace-buffer-events N]\n";
}

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    auto next = [&]() -> const char* {
      return k + 1 < argc ? argv[++k] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--metro") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metro = v;
    } else if (arg == "--all-metros") {
      opt.all_metros = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr || (std::string(v) != "small" && std::string(v) != "paper"))
        return false;
      opt.scale = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::string(v) != "auto") opt.threshold = std::strtod(v, nullptr);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.out_dir = v;
    } else if (arg == "--fault-profile") {
      const char* v = next();
      if (v == nullptr || !metas::traceroute::parse_fault_profile(v, opt.faults))
        return false;
    } else if (arg == "--telemetry") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.telemetry_path = v;
    } else if (arg == "--telemetry-format") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string fmt = v;
      if (fmt == "json")
        opt.telemetry_format = metas::util::telemetry::Format::kJson;
      else if (fmt == "csv")
        opt.telemetry_format = metas::util::telemetry::Format::kCsv;
      else
        return false;
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.checkpoint_path = v;
    } else if (arg == "--resume") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.resume_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.trace_path = v;
    } else if (arg == "--trace-buffer-events") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.trace_buffer_events = std::strtoull(v, nullptr, 10);
      if (opt.trace_buffer_events == 0) return false;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--keep-checkpoints") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.keep_checkpoints = static_cast<int>(std::strtol(v, nullptr, 10));
      if (opt.keep_checkpoints < 1) return false;
    } else if (arg == "--crash-after-checkpoints") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.crash_after_checkpoints = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--no-resilience") {
      opt.resilience = false;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return false;
    }
  }
  // --resume implies continued checkpointing to the same file.
  if (!opt.resume_path.empty() && opt.checkpoint_path.empty())
    opt.checkpoint_path = opt.resume_path;
  return true;
}

/// Everything that pins the deterministic trajectory of a run.  A resume
/// with a different fingerprint would silently diverge, so it is rejected.
void save_fingerprint(metas::util::checkpoint::Encoder& enc,
                      const CliOptions& opt) {
  enc.u64(opt.seed);
  enc.str(opt.scale);
  enc.b(opt.all_metros);
  enc.str(opt.metro);
  enc.b(opt.resilience);
  const metas::traceroute::FaultProfile& f = opt.faults;
  enc.f64(f.outage_start);
  enc.f64(f.outage_end);
  enc.f64(f.death);
  enc.f64(f.loss);
  enc.f64(f.bucket_capacity);
  enc.f64(f.bucket_refill);
  enc.f64(f.incident_start);
  enc.f64(f.incident_end);
  enc.u64(f.seed);
}

bool fingerprint_matches(metas::util::checkpoint::Decoder& dec,
                         const CliOptions& opt) {
  metas::util::checkpoint::Encoder expect;
  save_fingerprint(expect, opt);
  metas::util::checkpoint::Encoder got;
  got.u64(dec.u64());
  got.str(dec.str());
  got.b(dec.b());
  got.str(dec.str());
  got.b(dec.b());
  for (int k = 0; k < 8; ++k) got.f64(dec.f64());
  got.u64(dec.u64());
  return got.data() == expect.data();
}

/// Mutable run state that crosses metro boundaries and must survive a
/// crash: the hierarchical priors, completed-metro summaries, the next
/// metro index, and the shared measurement plane.
struct RunState {
  std::vector<MetroSummary> completed;
  metas::core::StrategyPriors priors;
  std::size_t next_metro = 0;
  std::string phase_blob;  // in-progress pipeline state; empty = none
};

void save_run_state(metas::util::checkpoint::Encoder& enc,
                    const CliOptions& opt, const RunState& rs,
                    const metas::eval::World& world) {
  save_fingerprint(enc, opt);
  enc.u64(rs.completed.size());
  for (const MetroSummary& m : rs.completed) m.save(enc);
  rs.priors.save(enc);
  enc.u64(rs.next_metro);
  world.ms->save(enc);
  world.engine->save(enc);
  enc.b(world.faults != nullptr);
  if (world.faults != nullptr) world.faults->save(enc);
  enc.b(!rs.phase_blob.empty());
  if (!rs.phase_blob.empty()) enc.str(rs.phase_blob);
}

bool load_run_state(metas::util::checkpoint::Decoder& dec,
                    const CliOptions& opt, RunState& rs,
                    metas::eval::World& world, std::string* error) {
  if (!fingerprint_matches(dec, opt)) {
    *error = "checkpoint was produced by a run with different "
             "seed/scale/metro/fault/resilience flags";
    return false;
  }
  rs.completed.assign(dec.u64(), {});
  for (MetroSummary& m : rs.completed) m.load(dec);
  rs.priors.load(dec);
  rs.next_metro = dec.u64();
  world.ms->load(dec);
  world.engine->load(dec);
  const bool has_faults = dec.b();
  if (has_faults != (world.faults != nullptr)) {
    *error = "checkpoint fault-injector presence does not match the profile";
    return false;
  }
  if (has_faults) world.faults->load(dec);
  rs.phase_blob.clear();
  if (dec.b()) rs.phase_blob = dec.str();
  return true;
}

/// Writes one checkpoint generation; dies by SIGKILL afterwards when the
/// crash-injection hook says this was the Nth write.
class CheckpointWriter {
 public:
  CheckpointWriter(const CliOptions& opt, const metas::eval::World& world)
      : opt_(&opt), world_(&world) {}

  bool enabled() const { return !opt_->checkpoint_path.empty(); }
  int written() const { return written_; }

  void write(const RunState& rs) {
    if (!enabled()) return;
    metas::util::checkpoint::Encoder enc;
    save_run_state(enc, *opt_, rs, *world_);
    metas::util::checkpoint::WriteOptions wo;
    wo.keep_last = opt_->keep_checkpoints;
    if (!metas::util::checkpoint::write_file(opt_->checkpoint_path, enc.data(),
                                             wo)) {
      std::cerr << "warning: failed to write checkpoint to '"
                << opt_->checkpoint_path << "'\n";
      return;
    }
    ++written_;
    // Flight-recorder dump: while tracing is armed, park the ring's last-N
    // events next to the checkpoint -- deliberately BEFORE the crash hook
    // below, so even a SIGKILLed run leaves a timeline of its final
    // moments for tools/trace_diff.py.
    if (metas::util::trace::Recorder::instance().enabled())
      metas::util::trace::Recorder::instance().write_file(
          opt_->checkpoint_path + ".trace.json");
    if (opt_->crash_after_checkpoints > 0 &&
        written_ >= opt_->crash_after_checkpoints) {
      // Crash-injection hook: die hard (no atexit, no flush) exactly at a
      // checkpoint boundary, like an OOM kill would.
      ::raise(SIGKILL);
    }
  }

 private:
  const CliOptions* opt_;
  const metas::eval::World* world_;
  int written_ = 0;
};

/// Renders with the eval exporter into memory, then publishes atomically:
/// a crash mid-export can never leave a truncated CSV for --resume to skip.
template <typename ExportFn>
bool export_atomic(const std::string& path, ExportFn&& fn) {
  std::ostringstream os;
  fn(os);
  return metas::util::checkpoint::atomic_write_file(path, os.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace metas;
  CliOptions opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  install_signal_handlers();
  if (!opt.trace_path.empty())
    util::trace::Recorder::instance().start(opt.trace_buffer_events);

  util::RunControl control;
  control.token = &g_cancel;
  if (opt.deadline_ms > 0)
    control.budget = util::DeadlineBudget::after_ms(opt.deadline_ms);

  eval::WorldConfig wc = opt.scale == "paper"
                             ? eval::paper_world_config(opt.seed)
                             : eval::small_world_config(opt.seed);
  wc.faults = opt.faults;
  wc.resilience.enabled = opt.resilience;
  if (!opt.quiet) std::cout << "building world (seed " << opt.seed << ")...\n";
  eval::World world = eval::build_world(wc);

  // Select metros.
  std::vector<topology::MetroId> metros;
  if (opt.all_metros) {
    metros = world.focus_metros;
  } else if (!opt.metro.empty()) {
    for (const auto& m : world.net.metros)
      if (m.name == opt.metro) metros.push_back(m.id);
    if (metros.empty()) {
      std::cerr << "error: unknown metro '" << opt.metro << "'. Focus metros:";
      for (auto m : world.focus_metros)
        std::cerr << ' ' << world.net.metros[static_cast<std::size_t>(m)].name;
      std::cerr << '\n';
      return 1;
    }
  } else {
    metros.push_back(world.focus_metros.front());
  }

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create output directory '" << opt.out_dir
              << "': " << ec.message() << '\n';
    return 1;
  }
  if (!opt.checkpoint_path.empty()) {
    const auto parent =
        std::filesystem::path(opt.checkpoint_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  }

  RunState rs;
  if (!opt.resume_path.empty()) {
    std::string diag;
    auto payload = util::checkpoint::load_file(opt.resume_path, &diag);
    if (!payload) {
      std::cerr << "error: no usable checkpoint at '" << opt.resume_path
                << "' (" << diag << ")\n";
      return 1;
    }
    try {
      util::checkpoint::Decoder dec(*payload);
      std::string why;
      if (!load_run_state(dec, opt, rs, world, &why)) {
        std::cerr << "error: cannot resume from '" << opt.resume_path << "': "
                  << why << '\n';
        return 1;
      }
    } catch (const util::checkpoint::CheckpointError& e) {
      std::cerr << "error: corrupt checkpoint payload in '" << opt.resume_path
                << "': " << e.what() << '\n';
      return 1;
    }
    if (!opt.quiet)
      std::cout << "resumed from " << opt.resume_path << " ("
                << rs.completed.size() << " metro(s) already complete"
                << (rs.phase_blob.empty() ? "" : ", one mid-pipeline") << ")\n";
  }

  CheckpointWriter writer(opt, world);
  bool stopped_early = false;
  core::DegradationReport last_degradation;

  for (std::size_t mi = rs.next_metro; mi < metros.size(); ++mi) {
    if (control.stop_requested()) {
      stopped_early = true;
      break;
    }
    const auto metro = metros[mi];
    core::MetroContext ctx(world.net, metro);
    const std::string name =
        world.net.metros[static_cast<std::size_t>(metro)].name;
    if (!opt.quiet) std::cout << "running metAScritic on " << name << "...\n";
    core::PipelineConfig pc;
    pc.scheduler.seed = opt.seed + static_cast<std::uint64_t>(metro) * 3 + 1;
    pc.rank.seed = opt.seed + static_cast<std::uint64_t>(metro) * 3 + 2;
    core::MetascriticPipeline pipeline(ctx, *world.ms, &rs.priors, pc);

    core::PipelineRunOptions po;
    po.control = &control;
    // The rank-boundary hook persists a full CLI snapshot: the phase blob
    // wrapped together with the shared measurement plane and the completed
    // metros, so a kill at ANY boundary resumes without losing a probe.
    const std::string* resume_blob =
        (mi == rs.next_metro && !rs.phase_blob.empty()) ? &rs.phase_blob
                                                        : nullptr;
    std::string resume_copy;
    if (resume_blob != nullptr) {
      resume_copy = *resume_blob;  // rs.phase_blob is overwritten below
      po.resume_blob = &resume_copy;
    }
    if (writer.enabled()) {
      po.checkpoint = [&](const std::string& phase_blob) {
        rs.next_metro = mi;
        rs.phase_blob = phase_blob;
        writer.write(rs);
      };
    }
    core::PipelineResult result = pipeline.run(po);
    last_degradation = result.degradation;
    double lambda = opt.threshold > -1.5 ? opt.threshold : result.threshold;

    auto path = [&](const std::string& kind) {
      return opt.out_dir + "/" + name + "_" + kind + ".csv";
    };
    if (!export_atomic(path("links"), [&](std::ostream& os) {
          eval::export_links_csv(os, ctx, result, lambda);
        })) {
      std::cerr << "error: cannot write " << path("links") << '\n';
      return 1;
    }
    export_atomic(path("ratings"), [&](std::ostream& os) {
      eval::export_ratings_csv(os, ctx, result);
    });
    export_atomic(path("measurements"), [&](std::ostream& os) {
      eval::export_measurement_log_csv(os, ctx, result);
    });

    std::size_t links = 0;
    const int n = static_cast<int>(ctx.size());
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (result.ratings(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j)) >= lambda)
          ++links;

    MetroSummary ms_row;
    ms_row.name = name;
    ms_row.ases = ctx.size();
    ms_row.rank = result.estimated_rank;
    ms_row.traces = result.targeted_traceroutes;
    ms_row.lambda = lambda;
    ms_row.links = links;
    const core::DegradationReport& d = result.degradation;
    ms_row.fill_fraction = d.fill_fraction;
    ms_row.probes_faulted = d.probes_faulted;
    ms_row.retries = d.retries;
    ms_row.requeues = d.requeues;
    ms_row.quarantined = d.quarantined_vps;
    ms_row.dead = d.dead_vps;
    rs.completed.push_back(ms_row);

    // Metro-completion boundary: persist the finished metro before moving
    // on, with no in-progress phase state.
    rs.next_metro = mi + 1;
    rs.phase_blob.clear();
    writer.write(rs);

    if (control.stop_requested()) {
      stopped_early = true;
      break;
    }
  }

  util::Table summary({"metro", "ASes", "rank", "traces", "lambda", "links out"});
  util::Table degraded({"metro", "row fill", "faulted", "retries", "requeues",
                        "quarantined", "dead VPs"});
  for (const MetroSummary& m : rs.completed) {
    summary.add_row({m.name, util::Table::fmt(m.ases),
                     util::Table::fmt(m.rank), util::Table::fmt(m.traces),
                     util::Table::fmt(m.lambda, 2), util::Table::fmt(m.links)});
    degraded.add_row({m.name, util::Table::fmt(m.fill_fraction, 3),
                      util::Table::fmt(m.probes_faulted),
                      util::Table::fmt(m.retries), util::Table::fmt(m.requeues),
                      util::Table::fmt(m.quarantined),
                      util::Table::fmt(m.dead)});
  }
  summary.print(std::cout);
  if (opt.faults.enabled()) {
    std::cout << "measurement-plane degradation (resilience "
              << (opt.resilience ? "on" : "off") << "):\n";
    degraded.print(std::cout);
  }

  if (stopped_early) {
    const bool by_deadline = control.budget.expired();
    util::Table crash({"cause", "phases truncated", "budget used (ms)",
                       "checkpoints", "metros done"});
    crash.add_row({g_cancel.cancelled() ? "signal" : "deadline",
                   util::Table::fmt(last_degradation.phases_truncated),
                   util::Table::fmt(control.budget.consumed_ms()),
                   util::Table::fmt(writer.written()),
                   util::Table::fmt(rs.completed.size())});
    std::cout << "run stopped early ("
              << (by_deadline ? "deadline expired" : "cancelled by signal")
              << "); best-so-far results exported:\n";
    crash.print(std::cout);
    if (writer.enabled())
      std::cout << "resume with: --resume " << opt.checkpoint_path << '\n';
    // A signal/deadline stop can land after the last checkpoint-time dump;
    // refresh the flight recording so it covers the final moments.
    if (writer.enabled() && util::trace::Recorder::instance().enabled())
      util::trace::Recorder::instance().write_file(opt.checkpoint_path +
                                                   ".trace.json");
  }

  if (!opt.quiet)
    std::cout << "CSV outputs written under " << opt.out_dir << "/\n";
  if (!opt.telemetry_path.empty()) {
    if (!util::telemetry::write_snapshot(opt.telemetry_path,
                                         opt.telemetry_format)) {
      std::cerr << "error: cannot write telemetry snapshot to '"
                << opt.telemetry_path << "'\n";
      return 1;
    }
    if (!opt.quiet) {
      std::cout << "telemetry snapshot written to " << opt.telemetry_path;
      if (!util::telemetry::compiled())
        std::cout << " (instrumentation compiled out: core counters only)";
      std::cout << "\n";
    }
  }
  if (!opt.trace_path.empty()) {
    util::trace::Recorder& rec = util::trace::Recorder::instance();
    rec.stop();  // quiescent: the run is over, drain is race-free
    if (!rec.write_file(opt.trace_path)) {
      std::cerr << "error: cannot write trace to '" << opt.trace_path << "'\n";
      return 1;
    }
    if (!opt.quiet) {
      std::cout << "trace written to " << opt.trace_path << " ("
                << rec.event_count() << " events";
      if (rec.dropped_events() > 0)
        std::cout << ", " << rec.dropped_events() << " dropped";
      std::cout << "); load in chrome://tracing or ui.perfetto.dev\n";
      if (!util::telemetry::compiled())
        std::cout << "  (instrumentation compiled out: trace is empty)\n";
    }
  }
  return 0;
}
