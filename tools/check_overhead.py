#!/usr/bin/env python3
"""Gate telemetry overhead: compare two google-benchmark JSON outputs.

Usage:
  tools/check_overhead.py ENABLED.json DISABLED.json
      [--benchmark-prefix BM_AlsFit] [--max-overhead 0.05]

Both inputs are `--benchmark_format=json` outputs of bench/perf_micro, one
from a telemetry-enabled build and one from a build configured with
-DMETASCRITIC_TELEMETRY=OFF.  For every benchmark whose name starts with the
prefix, the median (over repetitions, when present) cpu_time is compared;
the check fails when enabled exceeds disabled by more than --max-overhead
(fractional, default 5%).

Exit status: 0 when within budget, 1 when over, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def median_times(path: str, prefix: str) -> dict[str, float]:
    """name -> median cpu_time (ns) over plain iterations of each benchmark."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    samples: dict[str, list[float]] = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) emitted with repetitions;
        # we aggregate ourselves so both inputs are treated uniformly.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b.get("name", ""))
        if not name.startswith(prefix):
            continue
        samples.setdefault(name, []).append(float(b["cpu_time"]))
    return {name: statistics.median(v) for name, v in samples.items()}


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("enabled", help="benchmark JSON from the telemetry-enabled build")
    parser.add_argument("disabled", help="benchmark JSON from the compiled-out build")
    parser.add_argument("--benchmark-prefix", default="BM_AlsFit",
                        help="benchmarks to compare (name prefix)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="maximum allowed fractional slowdown (default 0.05)")
    args = parser.parse_args(argv)

    on = median_times(args.enabled, args.benchmark_prefix)
    off = median_times(args.disabled, args.benchmark_prefix)
    common = sorted(set(on) & set(off))
    if not common:
        print(f"check_overhead: no common '{args.benchmark_prefix}*' benchmarks "
              f"between {args.enabled} and {args.disabled}", file=sys.stderr)
        return 2

    status = 0
    for name in common:
        overhead = on[name] / off[name] - 1.0
        verdict = "OK" if overhead <= args.max_overhead else "OVER BUDGET"
        print(f"{name}: enabled {on[name]:.0f}ns vs disabled {off[name]:.0f}ns "
              f"-> {overhead:+.2%} (budget {args.max_overhead:.0%}) {verdict}")
        if overhead > args.max_overhead:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
