#!/usr/bin/env python3
"""Back-compat shim: telemetry-overhead gating moved to check_regression.py.

Delegates to the `telemetry-overhead-als` gate in regression_gates.json,
preserving the original CLI:

  tools/check_overhead.py ENABLED.json DISABLED.json
      [--benchmark-prefix BM_AlsFit] [--max-overhead 0.05]
"""

from __future__ import annotations

import argparse
import sys

import check_regression


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("enabled")
    parser.add_argument("disabled")
    parser.add_argument("--benchmark-prefix")
    parser.add_argument("--max-overhead", type=float)
    args = parser.parse_args(argv)

    fwd = [args.enabled, args.disabled, "--gate", "telemetry-overhead-als"]
    if args.benchmark_prefix is not None:
        fwd += ["--benchmark-prefix", args.benchmark_prefix]
    if args.max_overhead is not None:
        fwd += ["--max-overhead", str(args.max_overhead)]
    return check_regression.main(fwd)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
