#include <iostream>
#include "eval/world.hpp"
#include "eval/metrics.hpp"
#include "eval/splits.hpp"
using namespace metas;
int main(int argc, char** argv) {
  int budget_scale = argc>1 ? atoi(argv[1]) : 1;
  auto wc = eval::small_world_config(99);
  auto w = eval::build_world(wc);
  auto m = w.focus_metros.front();
  core::MetroContext ctx(w.net, m);
  core::PipelineConfig pc;
  pc.rank.budget_per_iteration = 4000 * budget_scale;
  pc.rank.max_rank = 40;
  core::StrategyPriors priors;
  core::MetascriticPipeline p(ctx, *w.ms, &priors, pc);
  auto r = p.run();
  std::cout << "rank=" << r.estimated_rank << " traces=" << r.targeted_traceroutes
            << " entries=" << r.estimated.total_filled() << " lambda=" << r.threshold << "\n";
  std::cout << "mse history:";
  for (auto [rk, mse] : r.rank_detail.history) std::cout << " " << rk << ":" << mse;
  std::cout << "\n";
  size_t inf=0, ran=0;
  for (auto& rec : r.measurement_log) { ran += rec.ran; inf += rec.informative; }
  std::cout << "measurements logged=" << r.measurement_log.size() << " ran=" << ran << " informative=" << inf << "\n";
  auto pairs = eval::score_pairs(ctx, r.ratings);
  auto mt = eval::truth_metrics(pairs, r.threshold);
  std::cout << "prec=" << mt.precision << " rec=" << mt.recall << " f=" << mt.f_score
            << " auprc=" << mt.auprc << " auc=" << mt.auc << "\n";

  // Paper-style cross-validation (Fig. 3): hold out 20% of E entries,
  // complete from the rest, PR on held-out signs.
  util::Rng srng(5);
  for (auto kind : {eval::SplitKind::kStratified, eval::SplitKind::kCompletelyOut}) {
    auto split = eval::make_split(r.estimated, kind, srng);
    core::FeatureMatrix feats = core::encode_features(ctx);
    core::AlsConfig ac; ac.rank = r.estimated_rank;
    core::AlsCompleter c(ctx.size(), feats, ac);
    c.fit(split.train);
    std::vector<util::Scored> sc;
    size_t truth_ok = 0;
    const auto& t = w.truth_at(m);
    for (auto& e : split.test) {
      sc.push_back({c.predict(e.i, e.j), e.value > 0});
      if ((e.value>0) == t.link(e.i, e.j)) truth_ok++;
    }
    std::cout << eval::to_string(kind) << ": AUPRC=" << util::auprc(sc)
              << " AUC=" << util::auc(sc)
              << " (label-vs-truth agreement " << double(truth_ok)/split.test.size() << ")\n";
  }
}
