#!/usr/bin/env python3
"""Per-span-path statistics and A/B diffs over Chrome trace-event JSON
written by the flight recorder (src/util/trace.cpp, DESIGN.md §13).

Usage:
  tools/trace_diff.py TRACE.json                      # stats mode
  tools/trace_diff.py BASE.json CANDIDATE.json        # diff mode
  tools/trace_diff.py BASE.json CAND.json --threshold 0.10 --min-total-us 100
  tools/trace_diff.py ... --json

Stats mode prints, per span *path* (slash-joined stack of span names, e.g.
``pipeline.run/pipeline.rank_estimation/als.fit``), the begin/end pair
count, total wall time and *self* time (total minus the time spent in child
spans).  Diff mode prints the candidate-minus-base delta of each of those
per common path, plus paths only one side has.

Diff mode gates: with --threshold F, the exit status is 1 when any common
path's total time grew by more than the fraction F (candidate/base - 1.0 >
F).  --min-total-us (default 50) ignores paths whose *base* total is below
the floor, so a 2us span doubling does not fail a build.  Without
--threshold the tool always exits 0 (report-only).

Flight dumps from cancelled or killed runs are expected input: spans that
were open when the ring was dumped have a B with no E, and rings that
wrapped may hold an E with no B.  Both are tolerated -- unmatched events
are counted and reported (``unmatched_begin`` / ``unmatched_end``), never
fatal.  The header's ``dropped_events`` is surfaced too, since a wrapped
ring means early spans are missing from the statistics.

Exit status: 0 in budget (or report-only), 1 over threshold, 2 on
malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_trace(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_diff: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict) or "traceEvents" not in data:
        print(f"trace_diff: {path} is not a Chrome trace-event JSON object "
              "(no traceEvents key)", file=sys.stderr)
        raise SystemExit(2)
    return data


def span_stats(trace: dict) -> tuple[dict[str, dict[str, float]], dict]:
    """Aggregate B/E pairs into per-span-path count/total/self statistics.

    Returns (stats, meta). stats maps slash-joined span paths to
    {"count", "total_us", "self_us"}; meta carries unmatched_begin,
    unmatched_end and the header's dropped_events.
    """
    # Events are emitted oldest-first per thread, threads concatenated, so
    # splitting by tid (preserving order) recovers each thread's timeline.
    by_tid: dict[int, list[dict]] = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") in ("B", "E"):
            by_tid.setdefault(int(ev.get("tid", 0)), []).append(ev)

    stats: dict[str, dict[str, float]] = {}
    unmatched_begin = 0
    unmatched_end = 0
    for events in by_tid.values():
        # Stack frames: [name, begin_ts_us, child_total_us]
        stack: list[list] = []
        for ev in events:
            if ev["ph"] == "B":
                stack.append([str(ev.get("name", "<unknown>")),
                              float(ev["ts"]), 0.0])
                continue
            if not stack:
                # Ring wrapped past this span's B, or the dump raced the
                # span's entry: count it, keep going.
                unmatched_end += 1
                continue
            name, begin_ts, child_total = stack.pop()
            if str(ev.get("name", name)) != name:
                # Crossed pair (should not happen with scoped spans); treat
                # both sides as unmatched rather than charging a bogus
                # duration to the wrong path.
                unmatched_begin += 1
                unmatched_end += 1
                continue
            dur = float(ev["ts"]) - begin_ts
            path = "/".join(f[0] for f in stack) + ("/" if stack else "") + name
            s = stats.setdefault(path,
                                 {"count": 0, "total_us": 0.0, "self_us": 0.0})
            s["count"] += 1
            s["total_us"] += dur
            s["self_us"] += dur - child_total
            if stack:
                stack[-1][2] += dur
        # Spans still open when the ring was dumped (flight recorder).
        unmatched_begin += len(stack)

    meta = {
        "unmatched_begin": unmatched_begin,
        "unmatched_end": unmatched_end,
        "dropped_events": int(
            trace.get("otherData", {}).get("dropped_events", 0)),
    }
    return stats, meta


def print_stats(path: str, stats: dict, meta: dict) -> None:
    print(f"{path}: {len(stats)} span paths, "
          f"dropped_events={meta['dropped_events']}, "
          f"unmatched B/E={meta['unmatched_begin']}/{meta['unmatched_end']}")
    width = max((len(p) for p in stats), default=4)
    print(f"  {'path':<{width}}  {'count':>7}  {'total_us':>12}  "
          f"{'self_us':>12}")
    for p in sorted(stats):
        s = stats[p]
        print(f"  {p:<{width}}  {s['count']:>7d}  {s['total_us']:>12.3f}  "
              f"{s['self_us']:>12.3f}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("base", help="trace JSON (or the only trace, in "
                                     "stats mode)")
    parser.add_argument("candidate", nargs="?",
                        help="trace JSON to diff against base")
    parser.add_argument("--threshold", type=float,
                        help="fail (exit 1) when any common path's total "
                             "time grew by more than this fraction")
    parser.add_argument("--min-total-us", type=float, default=50.0,
                        help="ignore paths whose base total is below this "
                             "many microseconds (default: %(default)s)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON instead of a table")
    args = parser.parse_args(argv)

    base_stats, base_meta = span_stats(load_trace(args.base))

    if args.candidate is None:
        if args.as_json:
            json.dump({"file": args.base, "spans": base_stats,
                       **base_meta}, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print_stats(args.base, base_stats, base_meta)
        return 0

    cand_stats, cand_meta = span_stats(load_trace(args.candidate))
    paths = sorted(set(base_stats) | set(cand_stats))
    rows = []
    over_budget: list[str] = []
    for p in paths:
        b = base_stats.get(p)
        c = cand_stats.get(p)
        row = {
            "path": p,
            "base_count": b["count"] if b else 0,
            "cand_count": c["count"] if c else 0,
            "base_total_us": b["total_us"] if b else 0.0,
            "cand_total_us": c["total_us"] if c else 0.0,
            "base_self_us": b["self_us"] if b else 0.0,
            "cand_self_us": c["self_us"] if c else 0.0,
        }
        row["delta_total_us"] = row["cand_total_us"] - row["base_total_us"]
        row["delta_self_us"] = row["cand_self_us"] - row["base_self_us"]
        if b and b["total_us"] >= args.min_total_us:
            row["ratio"] = (row["cand_total_us"] / row["base_total_us"] - 1.0
                            if row["base_total_us"] > 0.0 else 0.0)
            if args.threshold is not None and row["ratio"] > args.threshold:
                over_budget.append(p)
        rows.append(row)

    if args.as_json:
        json.dump({"base": args.base, "candidate": args.candidate,
                   "threshold": args.threshold,
                   "min_total_us": args.min_total_us,
                   "rows": rows, "over_budget": over_budget,
                   "base_meta": base_meta, "candidate_meta": cand_meta},
                  sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        width = max((len(p) for p in paths), default=4)
        print(f"  {'path':<{width}}  {'count':>11}  {'total_us':>23}  "
              f"{'dself_us':>12}  {'ratio':>8}")
        for row in rows:
            ratio = (f"{row['ratio']:+8.1%}" if "ratio" in row else
                     f"{'--':>8}")
            marker = "  OVER" if row["path"] in over_budget else ""
            print(f"  {row['path']:<{width}}  "
                  f"{row['base_count']:>4d}->{row['cand_count']:<4d}  "
                  f"{row['base_total_us']:>10.1f}->{row['cand_total_us']:<10.1f}  "
                  f"{row['delta_self_us']:>+12.3f}  {ratio}{marker}")
        for label, meta in (("base", base_meta), ("candidate", cand_meta)):
            if meta["dropped_events"] or meta["unmatched_begin"] \
                    or meta["unmatched_end"]:
                print(f"  note: {label} dropped_events="
                      f"{meta['dropped_events']}, unmatched B/E="
                      f"{meta['unmatched_begin']}/{meta['unmatched_end']}")

    if over_budget:
        print(f"trace_diff: {len(over_budget)} path(s) over the "
              f"{args.threshold:.0%} threshold: {', '.join(over_budget)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. `trace_diff.py t.json | head`
        sys.exit(0)
