file(REMOVE_RECURSE
  "CMakeFiles/hyper_sweep.dir/hyper_sweep.cpp.o"
  "CMakeFiles/hyper_sweep.dir/hyper_sweep.cpp.o.d"
  "hyper_sweep"
  "hyper_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyper_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
