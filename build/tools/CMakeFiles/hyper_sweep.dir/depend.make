# Empty dependencies file for hyper_sweep.
# This may be replaced when dependencies are built.
