# Empty compiler generated dependencies file for hyper_sweep.
# This may be replaced when dependencies are built.
