# Empty compiler generated dependencies file for als_check.
# This may be replaced when dependencies are built.
