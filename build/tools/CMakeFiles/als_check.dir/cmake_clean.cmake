file(REMOVE_RECURSE
  "CMakeFiles/als_check.dir/als_check.cpp.o"
  "CMakeFiles/als_check.dir/als_check.cpp.o.d"
  "als_check"
  "als_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/als_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
