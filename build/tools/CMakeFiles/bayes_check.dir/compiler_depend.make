# Empty compiler generated dependencies file for bayes_check.
# This may be replaced when dependencies are built.
