file(REMOVE_RECURSE
  "CMakeFiles/bayes_check.dir/bayes_check.cpp.o"
  "CMakeFiles/bayes_check.dir/bayes_check.cpp.o.d"
  "bayes_check"
  "bayes_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayes_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
