# Empty compiler generated dependencies file for metascritic_cli.
# This may be replaced when dependencies are built.
