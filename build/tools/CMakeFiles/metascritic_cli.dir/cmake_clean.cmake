file(REMOVE_RECURSE
  "CMakeFiles/metascritic_cli.dir/metascritic_cli.cpp.o"
  "CMakeFiles/metascritic_cli.dir/metascritic_cli.cpp.o.d"
  "metascritic_cli"
  "metascritic_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metascritic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
