# Empty compiler generated dependencies file for pipe_diag.
# This may be replaced when dependencies are built.
