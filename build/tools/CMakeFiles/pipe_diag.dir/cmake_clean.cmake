file(REMOVE_RECURSE
  "CMakeFiles/pipe_diag.dir/pipe_diag.cpp.o"
  "CMakeFiles/pipe_diag.dir/pipe_diag.cpp.o.d"
  "pipe_diag"
  "pipe_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipe_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
