file(REMOVE_RECURSE
  "CMakeFiles/diag.dir/diag.cpp.o"
  "CMakeFiles/diag.dir/diag.cpp.o.d"
  "diag"
  "diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
