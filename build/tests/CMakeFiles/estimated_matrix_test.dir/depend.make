# Empty dependencies file for estimated_matrix_test.
# This may be replaced when dependencies are built.
