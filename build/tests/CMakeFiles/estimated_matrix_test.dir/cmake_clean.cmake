file(REMOVE_RECURSE
  "CMakeFiles/estimated_matrix_test.dir/estimated_matrix_test.cpp.o"
  "CMakeFiles/estimated_matrix_test.dir/estimated_matrix_test.cpp.o.d"
  "estimated_matrix_test"
  "estimated_matrix_test.pdb"
  "estimated_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimated_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
