
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/generator_test.cpp" "tests/CMakeFiles/generator_test.dir/generator_test.cpp.o" "gcc" "tests/CMakeFiles/generator_test.dir/generator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/metas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/metas_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/metas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ipnet/CMakeFiles/metas_ipnet.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/metas_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/metas_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/metas_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/metas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
