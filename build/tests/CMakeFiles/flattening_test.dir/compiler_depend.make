# Empty compiler generated dependencies file for flattening_test.
# This may be replaced when dependencies are built.
