file(REMOVE_RECURSE
  "CMakeFiles/flattening_test.dir/flattening_test.cpp.o"
  "CMakeFiles/flattening_test.dir/flattening_test.cpp.o.d"
  "flattening_test"
  "flattening_test.pdb"
  "flattening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flattening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
