file(REMOVE_RECURSE
  "CMakeFiles/route_leak_test.dir/route_leak_test.cpp.o"
  "CMakeFiles/route_leak_test.dir/route_leak_test.cpp.o.d"
  "route_leak_test"
  "route_leak_test.pdb"
  "route_leak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_leak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
