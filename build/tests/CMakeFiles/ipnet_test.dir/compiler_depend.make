# Empty compiler generated dependencies file for ipnet_test.
# This may be replaced when dependencies are built.
