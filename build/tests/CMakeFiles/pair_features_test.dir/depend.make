# Empty dependencies file for pair_features_test.
# This may be replaced when dependencies are built.
