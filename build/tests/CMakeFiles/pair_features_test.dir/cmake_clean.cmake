file(REMOVE_RECURSE
  "CMakeFiles/pair_features_test.dir/pair_features_test.cpp.o"
  "CMakeFiles/pair_features_test.dir/pair_features_test.cpp.o.d"
  "pair_features_test"
  "pair_features_test.pdb"
  "pair_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
