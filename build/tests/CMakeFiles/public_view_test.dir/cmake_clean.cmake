file(REMOVE_RECURSE
  "CMakeFiles/public_view_test.dir/public_view_test.cpp.o"
  "CMakeFiles/public_view_test.dir/public_view_test.cpp.o.d"
  "public_view_test"
  "public_view_test.pdb"
  "public_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
