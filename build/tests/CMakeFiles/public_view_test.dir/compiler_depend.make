# Empty compiler generated dependencies file for public_view_test.
# This may be replaced when dependencies are built.
