file(REMOVE_RECURSE
  "CMakeFiles/hijack_test.dir/hijack_test.cpp.o"
  "CMakeFiles/hijack_test.dir/hijack_test.cpp.o.d"
  "hijack_test"
  "hijack_test.pdb"
  "hijack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hijack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
