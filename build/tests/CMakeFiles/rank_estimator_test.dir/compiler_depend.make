# Empty compiler generated dependencies file for rank_estimator_test.
# This may be replaced when dependencies are built.
