file(REMOVE_RECURSE
  "CMakeFiles/rank_estimator_test.dir/rank_estimator_test.cpp.o"
  "CMakeFiles/rank_estimator_test.dir/rank_estimator_test.cpp.o.d"
  "rank_estimator_test"
  "rank_estimator_test.pdb"
  "rank_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
