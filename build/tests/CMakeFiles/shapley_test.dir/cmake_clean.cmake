file(REMOVE_RECURSE
  "CMakeFiles/shapley_test.dir/shapley_test.cpp.o"
  "CMakeFiles/shapley_test.dir/shapley_test.cpp.o.d"
  "shapley_test"
  "shapley_test.pdb"
  "shapley_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapley_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
