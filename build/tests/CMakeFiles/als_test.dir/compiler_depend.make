# Empty compiler generated dependencies file for als_test.
# This may be replaced when dependencies are built.
