file(REMOVE_RECURSE
  "CMakeFiles/internet_test.dir/internet_test.cpp.o"
  "CMakeFiles/internet_test.dir/internet_test.cpp.o.d"
  "internet_test"
  "internet_test.pdb"
  "internet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
