# Empty dependencies file for metas_topology.
# This may be replaced when dependencies are built.
