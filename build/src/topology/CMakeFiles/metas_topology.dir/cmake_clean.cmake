file(REMOVE_RECURSE
  "CMakeFiles/metas_topology.dir/generator.cpp.o"
  "CMakeFiles/metas_topology.dir/generator.cpp.o.d"
  "CMakeFiles/metas_topology.dir/internet.cpp.o"
  "CMakeFiles/metas_topology.dir/internet.cpp.o.d"
  "libmetas_topology.a"
  "libmetas_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
