file(REMOVE_RECURSE
  "libmetas_topology.a"
)
