# Empty compiler generated dependencies file for metas_traceroute.
# This may be replaced when dependencies are built.
