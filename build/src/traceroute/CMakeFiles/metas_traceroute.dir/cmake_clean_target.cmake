file(REMOVE_RECURSE
  "libmetas_traceroute.a"
)
