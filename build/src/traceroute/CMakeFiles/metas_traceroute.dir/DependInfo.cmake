
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traceroute/consistency.cpp" "src/traceroute/CMakeFiles/metas_traceroute.dir/consistency.cpp.o" "gcc" "src/traceroute/CMakeFiles/metas_traceroute.dir/consistency.cpp.o.d"
  "/root/repo/src/traceroute/engine.cpp" "src/traceroute/CMakeFiles/metas_traceroute.dir/engine.cpp.o" "gcc" "src/traceroute/CMakeFiles/metas_traceroute.dir/engine.cpp.o.d"
  "/root/repo/src/traceroute/observations.cpp" "src/traceroute/CMakeFiles/metas_traceroute.dir/observations.cpp.o" "gcc" "src/traceroute/CMakeFiles/metas_traceroute.dir/observations.cpp.o.d"
  "/root/repo/src/traceroute/strategy.cpp" "src/traceroute/CMakeFiles/metas_traceroute.dir/strategy.cpp.o" "gcc" "src/traceroute/CMakeFiles/metas_traceroute.dir/strategy.cpp.o.d"
  "/root/repo/src/traceroute/vantage_point.cpp" "src/traceroute/CMakeFiles/metas_traceroute.dir/vantage_point.cpp.o" "gcc" "src/traceroute/CMakeFiles/metas_traceroute.dir/vantage_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/metas_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/metas_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metas_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/metas_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
