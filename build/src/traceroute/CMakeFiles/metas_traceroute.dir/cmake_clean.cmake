file(REMOVE_RECURSE
  "CMakeFiles/metas_traceroute.dir/consistency.cpp.o"
  "CMakeFiles/metas_traceroute.dir/consistency.cpp.o.d"
  "CMakeFiles/metas_traceroute.dir/engine.cpp.o"
  "CMakeFiles/metas_traceroute.dir/engine.cpp.o.d"
  "CMakeFiles/metas_traceroute.dir/observations.cpp.o"
  "CMakeFiles/metas_traceroute.dir/observations.cpp.o.d"
  "CMakeFiles/metas_traceroute.dir/strategy.cpp.o"
  "CMakeFiles/metas_traceroute.dir/strategy.cpp.o.d"
  "CMakeFiles/metas_traceroute.dir/vantage_point.cpp.o"
  "CMakeFiles/metas_traceroute.dir/vantage_point.cpp.o.d"
  "libmetas_traceroute.a"
  "libmetas_traceroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
