file(REMOVE_RECURSE
  "libmetas_ipnet.a"
)
