file(REMOVE_RECURSE
  "CMakeFiles/metas_ipnet.dir/address_plan.cpp.o"
  "CMakeFiles/metas_ipnet.dir/address_plan.cpp.o.d"
  "CMakeFiles/metas_ipnet.dir/ip_trace.cpp.o"
  "CMakeFiles/metas_ipnet.dir/ip_trace.cpp.o.d"
  "CMakeFiles/metas_ipnet.dir/prefix.cpp.o"
  "CMakeFiles/metas_ipnet.dir/prefix.cpp.o.d"
  "libmetas_ipnet.a"
  "libmetas_ipnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_ipnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
