# Empty dependencies file for metas_ipnet.
# This may be replaced when dependencies are built.
