# Empty dependencies file for metas_baselines.
# This may be replaced when dependencies are built.
