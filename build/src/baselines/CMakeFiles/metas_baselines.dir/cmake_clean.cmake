file(REMOVE_RECURSE
  "CMakeFiles/metas_baselines.dir/forest.cpp.o"
  "CMakeFiles/metas_baselines.dir/forest.cpp.o.d"
  "CMakeFiles/metas_baselines.dir/ncf.cpp.o"
  "CMakeFiles/metas_baselines.dir/ncf.cpp.o.d"
  "libmetas_baselines.a"
  "libmetas_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
