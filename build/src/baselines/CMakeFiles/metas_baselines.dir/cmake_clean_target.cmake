file(REMOVE_RECURSE
  "libmetas_baselines.a"
)
