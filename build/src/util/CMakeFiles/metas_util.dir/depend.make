# Empty dependencies file for metas_util.
# This may be replaced when dependencies are built.
