file(REMOVE_RECURSE
  "CMakeFiles/metas_util.dir/curves.cpp.o"
  "CMakeFiles/metas_util.dir/curves.cpp.o.d"
  "CMakeFiles/metas_util.dir/stats.cpp.o"
  "CMakeFiles/metas_util.dir/stats.cpp.o.d"
  "CMakeFiles/metas_util.dir/table.cpp.o"
  "CMakeFiles/metas_util.dir/table.cpp.o.d"
  "libmetas_util.a"
  "libmetas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
