file(REMOVE_RECURSE
  "libmetas_util.a"
)
