file(REMOVE_RECURSE
  "libmetas_linalg.a"
)
