file(REMOVE_RECURSE
  "CMakeFiles/metas_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/metas_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/metas_linalg.dir/matrix.cpp.o"
  "CMakeFiles/metas_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/metas_linalg.dir/solve.cpp.o"
  "CMakeFiles/metas_linalg.dir/solve.cpp.o.d"
  "libmetas_linalg.a"
  "libmetas_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
