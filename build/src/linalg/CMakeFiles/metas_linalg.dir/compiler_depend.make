# Empty compiler generated dependencies file for metas_linalg.
# This may be replaced when dependencies are built.
