# Empty dependencies file for metas_core.
# This may be replaced when dependencies are built.
