
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/als.cpp" "src/core/CMakeFiles/metas_core.dir/als.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/als.cpp.o.d"
  "/root/repo/src/core/estimated_matrix.cpp" "src/core/CMakeFiles/metas_core.dir/estimated_matrix.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/estimated_matrix.cpp.o.d"
  "/root/repo/src/core/evidence.cpp" "src/core/CMakeFiles/metas_core.dir/evidence.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/evidence.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/metas_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/features.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/metas_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/measurement_system.cpp" "src/core/CMakeFiles/metas_core.dir/measurement_system.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/measurement_system.cpp.o.d"
  "/root/repo/src/core/pair_features.cpp" "src/core/CMakeFiles/metas_core.dir/pair_features.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/pair_features.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/metas_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/probabilistic.cpp" "src/core/CMakeFiles/metas_core.dir/probabilistic.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/probabilistic.cpp.o.d"
  "/root/repo/src/core/probability.cpp" "src/core/CMakeFiles/metas_core.dir/probability.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/probability.cpp.o.d"
  "/root/repo/src/core/rank_estimator.cpp" "src/core/CMakeFiles/metas_core.dir/rank_estimator.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/rank_estimator.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/metas_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/shapley.cpp" "src/core/CMakeFiles/metas_core.dir/shapley.cpp.o" "gcc" "src/core/CMakeFiles/metas_core.dir/shapley.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traceroute/CMakeFiles/metas_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/metas_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/metas_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/metas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
