file(REMOVE_RECURSE
  "CMakeFiles/metas_core.dir/als.cpp.o"
  "CMakeFiles/metas_core.dir/als.cpp.o.d"
  "CMakeFiles/metas_core.dir/estimated_matrix.cpp.o"
  "CMakeFiles/metas_core.dir/estimated_matrix.cpp.o.d"
  "CMakeFiles/metas_core.dir/evidence.cpp.o"
  "CMakeFiles/metas_core.dir/evidence.cpp.o.d"
  "CMakeFiles/metas_core.dir/features.cpp.o"
  "CMakeFiles/metas_core.dir/features.cpp.o.d"
  "CMakeFiles/metas_core.dir/hierarchical.cpp.o"
  "CMakeFiles/metas_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/metas_core.dir/measurement_system.cpp.o"
  "CMakeFiles/metas_core.dir/measurement_system.cpp.o.d"
  "CMakeFiles/metas_core.dir/pair_features.cpp.o"
  "CMakeFiles/metas_core.dir/pair_features.cpp.o.d"
  "CMakeFiles/metas_core.dir/pipeline.cpp.o"
  "CMakeFiles/metas_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/metas_core.dir/probabilistic.cpp.o"
  "CMakeFiles/metas_core.dir/probabilistic.cpp.o.d"
  "CMakeFiles/metas_core.dir/probability.cpp.o"
  "CMakeFiles/metas_core.dir/probability.cpp.o.d"
  "CMakeFiles/metas_core.dir/rank_estimator.cpp.o"
  "CMakeFiles/metas_core.dir/rank_estimator.cpp.o.d"
  "CMakeFiles/metas_core.dir/scheduler.cpp.o"
  "CMakeFiles/metas_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/metas_core.dir/shapley.cpp.o"
  "CMakeFiles/metas_core.dir/shapley.cpp.o.d"
  "libmetas_core.a"
  "libmetas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
