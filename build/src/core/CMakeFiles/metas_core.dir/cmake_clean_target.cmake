file(REMOVE_RECURSE
  "libmetas_core.a"
)
