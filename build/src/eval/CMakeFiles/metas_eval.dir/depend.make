# Empty dependencies file for metas_eval.
# This may be replaced when dependencies are built.
