file(REMOVE_RECURSE
  "CMakeFiles/metas_eval.dir/export.cpp.o"
  "CMakeFiles/metas_eval.dir/export.cpp.o.d"
  "CMakeFiles/metas_eval.dir/metrics.cpp.o"
  "CMakeFiles/metas_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/metas_eval.dir/splits.cpp.o"
  "CMakeFiles/metas_eval.dir/splits.cpp.o.d"
  "CMakeFiles/metas_eval.dir/topologies.cpp.o"
  "CMakeFiles/metas_eval.dir/topologies.cpp.o.d"
  "CMakeFiles/metas_eval.dir/validation.cpp.o"
  "CMakeFiles/metas_eval.dir/validation.cpp.o.d"
  "CMakeFiles/metas_eval.dir/world.cpp.o"
  "CMakeFiles/metas_eval.dir/world.cpp.o.d"
  "libmetas_eval.a"
  "libmetas_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
