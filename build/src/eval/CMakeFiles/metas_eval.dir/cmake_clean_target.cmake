file(REMOVE_RECURSE
  "libmetas_eval.a"
)
