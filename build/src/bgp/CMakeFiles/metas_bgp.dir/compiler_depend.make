# Empty compiler generated dependencies file for metas_bgp.
# This may be replaced when dependencies are built.
