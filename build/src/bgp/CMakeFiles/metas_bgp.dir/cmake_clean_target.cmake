file(REMOVE_RECURSE
  "libmetas_bgp.a"
)
