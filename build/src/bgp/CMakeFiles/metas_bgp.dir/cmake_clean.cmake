file(REMOVE_RECURSE
  "CMakeFiles/metas_bgp.dir/as_graph.cpp.o"
  "CMakeFiles/metas_bgp.dir/as_graph.cpp.o.d"
  "CMakeFiles/metas_bgp.dir/flattening.cpp.o"
  "CMakeFiles/metas_bgp.dir/flattening.cpp.o.d"
  "CMakeFiles/metas_bgp.dir/hijack.cpp.o"
  "CMakeFiles/metas_bgp.dir/hijack.cpp.o.d"
  "CMakeFiles/metas_bgp.dir/public_view.cpp.o"
  "CMakeFiles/metas_bgp.dir/public_view.cpp.o.d"
  "CMakeFiles/metas_bgp.dir/route_leak.cpp.o"
  "CMakeFiles/metas_bgp.dir/route_leak.cpp.o.d"
  "CMakeFiles/metas_bgp.dir/routing.cpp.o"
  "CMakeFiles/metas_bgp.dir/routing.cpp.o.d"
  "libmetas_bgp.a"
  "libmetas_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metas_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
