
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_graph.cpp" "src/bgp/CMakeFiles/metas_bgp.dir/as_graph.cpp.o" "gcc" "src/bgp/CMakeFiles/metas_bgp.dir/as_graph.cpp.o.d"
  "/root/repo/src/bgp/flattening.cpp" "src/bgp/CMakeFiles/metas_bgp.dir/flattening.cpp.o" "gcc" "src/bgp/CMakeFiles/metas_bgp.dir/flattening.cpp.o.d"
  "/root/repo/src/bgp/hijack.cpp" "src/bgp/CMakeFiles/metas_bgp.dir/hijack.cpp.o" "gcc" "src/bgp/CMakeFiles/metas_bgp.dir/hijack.cpp.o.d"
  "/root/repo/src/bgp/public_view.cpp" "src/bgp/CMakeFiles/metas_bgp.dir/public_view.cpp.o" "gcc" "src/bgp/CMakeFiles/metas_bgp.dir/public_view.cpp.o.d"
  "/root/repo/src/bgp/route_leak.cpp" "src/bgp/CMakeFiles/metas_bgp.dir/route_leak.cpp.o" "gcc" "src/bgp/CMakeFiles/metas_bgp.dir/route_leak.cpp.o.d"
  "/root/repo/src/bgp/routing.cpp" "src/bgp/CMakeFiles/metas_bgp.dir/routing.cpp.o" "gcc" "src/bgp/CMakeFiles/metas_bgp.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/metas_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metas_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/metas_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
