file(REMOVE_RECURSE
  "CMakeFiles/fig03_precision_recall.dir/fig03_precision_recall.cpp.o"
  "CMakeFiles/fig03_precision_recall.dir/fig03_precision_recall.cpp.o.d"
  "fig03_precision_recall"
  "fig03_precision_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
