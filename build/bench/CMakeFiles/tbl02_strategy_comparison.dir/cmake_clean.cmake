file(REMOVE_RECURSE
  "CMakeFiles/tbl02_strategy_comparison.dir/tbl02_strategy_comparison.cpp.o"
  "CMakeFiles/tbl02_strategy_comparison.dir/tbl02_strategy_comparison.cpp.o.d"
  "tbl02_strategy_comparison"
  "tbl02_strategy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl02_strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
