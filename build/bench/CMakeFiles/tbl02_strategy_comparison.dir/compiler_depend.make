# Empty compiler generated dependencies file for tbl02_strategy_comparison.
# This may be replaced when dependencies are built.
