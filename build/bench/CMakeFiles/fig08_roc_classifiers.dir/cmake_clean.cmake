file(REMOVE_RECURSE
  "CMakeFiles/fig08_roc_classifiers.dir/fig08_roc_classifiers.cpp.o"
  "CMakeFiles/fig08_roc_classifiers.dir/fig08_roc_classifiers.cpp.o.d"
  "fig08_roc_classifiers"
  "fig08_roc_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_roc_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
