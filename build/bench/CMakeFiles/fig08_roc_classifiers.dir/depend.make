# Empty dependencies file for fig08_roc_classifiers.
# This may be replaced when dependencies are built.
