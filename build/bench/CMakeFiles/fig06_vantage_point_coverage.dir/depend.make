# Empty dependencies file for fig06_vantage_point_coverage.
# This may be replaced when dependencies are built.
