file(REMOVE_RECURSE
  "CMakeFiles/fig06_vantage_point_coverage.dir/fig06_vantage_point_coverage.cpp.o"
  "CMakeFiles/fig06_vantage_point_coverage.dir/fig06_vantage_point_coverage.cpp.o.d"
  "fig06_vantage_point_coverage"
  "fig06_vantage_point_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vantage_point_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
