# Empty compiler generated dependencies file for fig16_links_per_metro.
# This may be replaced when dependencies are built.
