file(REMOVE_RECURSE
  "CMakeFiles/fig16_links_per_metro.dir/fig16_links_per_metro.cpp.o"
  "CMakeFiles/fig16_links_per_metro.dir/fig16_links_per_metro.cpp.o.d"
  "fig16_links_per_metro"
  "fig16_links_per_metro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_links_per_metro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
