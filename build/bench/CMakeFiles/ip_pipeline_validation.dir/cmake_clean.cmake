file(REMOVE_RECURSE
  "CMakeFiles/ip_pipeline_validation.dir/ip_pipeline_validation.cpp.o"
  "CMakeFiles/ip_pipeline_validation.dir/ip_pipeline_validation.cpp.o.d"
  "ip_pipeline_validation"
  "ip_pipeline_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_pipeline_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
