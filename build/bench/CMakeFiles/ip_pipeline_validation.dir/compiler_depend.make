# Empty compiler generated dependencies file for ip_pipeline_validation.
# This may be replaced when dependencies are built.
