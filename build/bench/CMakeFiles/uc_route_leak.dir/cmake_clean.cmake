file(REMOVE_RECURSE
  "CMakeFiles/uc_route_leak.dir/uc_route_leak.cpp.o"
  "CMakeFiles/uc_route_leak.dir/uc_route_leak.cpp.o.d"
  "uc_route_leak"
  "uc_route_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uc_route_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
