# Empty dependencies file for uc_route_leak.
# This may be replaced when dependencies are built.
