file(REMOVE_RECURSE
  "CMakeFiles/f2_shapley_explanations.dir/f2_shapley_explanations.cpp.o"
  "CMakeFiles/f2_shapley_explanations.dir/f2_shapley_explanations.cpp.o.d"
  "f2_shapley_explanations"
  "f2_shapley_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2_shapley_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
