# Empty compiler generated dependencies file for f2_shapley_explanations.
# This may be replaced when dependencies are built.
