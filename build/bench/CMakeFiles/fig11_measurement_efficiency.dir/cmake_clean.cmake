file(REMOVE_RECURSE
  "CMakeFiles/fig11_measurement_efficiency.dir/fig11_measurement_efficiency.cpp.o"
  "CMakeFiles/fig11_measurement_efficiency.dir/fig11_measurement_efficiency.cpp.o.d"
  "fig11_measurement_efficiency"
  "fig11_measurement_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_measurement_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
