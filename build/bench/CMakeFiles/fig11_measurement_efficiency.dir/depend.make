# Empty dependencies file for fig11_measurement_efficiency.
# This may be replaced when dependencies are built.
