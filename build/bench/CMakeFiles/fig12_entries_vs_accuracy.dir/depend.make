# Empty dependencies file for fig12_entries_vs_accuracy.
# This may be replaced when dependencies are built.
