# Empty compiler generated dependencies file for fig04_probability_calibration.
# This may be replaced when dependencies are built.
