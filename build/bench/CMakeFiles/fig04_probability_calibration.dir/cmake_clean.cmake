file(REMOVE_RECURSE
  "CMakeFiles/fig04_probability_calibration.dir/fig04_probability_calibration.cpp.o"
  "CMakeFiles/fig04_probability_calibration.dir/fig04_probability_calibration.cpp.o.d"
  "fig04_probability_calibration"
  "fig04_probability_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_probability_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
