# Empty dependencies file for fig15_threshold_sweep.
# This may be replaced when dependencies are built.
