file(REMOVE_RECURSE
  "CMakeFiles/fig05_probe_coverage_rating.dir/fig05_probe_coverage_rating.cpp.o"
  "CMakeFiles/fig05_probe_coverage_rating.dir/fig05_probe_coverage_rating.cpp.o.d"
  "fig05_probe_coverage_rating"
  "fig05_probe_coverage_rating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_probe_coverage_rating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
