# Empty dependencies file for fig05_probe_coverage_rating.
# This may be replaced when dependencies are built.
