# Empty dependencies file for tbl03_flattening.
# This may be replaced when dependencies are built.
