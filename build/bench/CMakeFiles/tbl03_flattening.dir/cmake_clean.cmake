file(REMOVE_RECURSE
  "CMakeFiles/tbl03_flattening.dir/tbl03_flattening.cpp.o"
  "CMakeFiles/tbl03_flattening.dir/tbl03_flattening.cpp.o.d"
  "tbl03_flattening"
  "tbl03_flattening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl03_flattening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
