file(REMOVE_RECURSE
  "CMakeFiles/tbl04_per_metro_performance.dir/tbl04_per_metro_performance.cpp.o"
  "CMakeFiles/tbl04_per_metro_performance.dir/tbl04_per_metro_performance.cpp.o.d"
  "tbl04_per_metro_performance"
  "tbl04_per_metro_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl04_per_metro_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
