# Empty compiler generated dependencies file for tbl04_per_metro_performance.
# This may be replaced when dependencies are built.
