file(REMOVE_RECURSE
  "CMakeFiles/fig10_controlled_rank.dir/fig10_controlled_rank.cpp.o"
  "CMakeFiles/fig10_controlled_rank.dir/fig10_controlled_rank.cpp.o.d"
  "fig10_controlled_rank"
  "fig10_controlled_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_controlled_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
