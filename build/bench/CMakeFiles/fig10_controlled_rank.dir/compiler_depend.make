# Empty compiler generated dependencies file for fig10_controlled_rank.
# This may be replaced when dependencies are built.
