# Empty compiler generated dependencies file for fig01_feature_correlations.
# This may be replaced when dependencies are built.
