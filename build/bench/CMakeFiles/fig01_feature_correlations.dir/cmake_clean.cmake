file(REMOVE_RECURSE
  "CMakeFiles/fig01_feature_correlations.dir/fig01_feature_correlations.cpp.o"
  "CMakeFiles/fig01_feature_correlations.dir/fig01_feature_correlations.cpp.o.d"
  "fig01_feature_correlations"
  "fig01_feature_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_feature_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
