file(REMOVE_RECURSE
  "CMakeFiles/e7_nonexistence_ablation.dir/e7_nonexistence_ablation.cpp.o"
  "CMakeFiles/e7_nonexistence_ablation.dir/e7_nonexistence_ablation.cpp.o.d"
  "e7_nonexistence_ablation"
  "e7_nonexistence_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_nonexistence_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
