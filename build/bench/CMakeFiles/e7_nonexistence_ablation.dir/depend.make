# Empty dependencies file for e7_nonexistence_ablation.
# This may be replaced when dependencies are built.
