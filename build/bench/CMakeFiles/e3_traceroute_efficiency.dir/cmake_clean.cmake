file(REMOVE_RECURSE
  "CMakeFiles/e3_traceroute_efficiency.dir/e3_traceroute_efficiency.cpp.o"
  "CMakeFiles/e3_traceroute_efficiency.dir/e3_traceroute_efficiency.cpp.o.d"
  "e3_traceroute_efficiency"
  "e3_traceroute_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_traceroute_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
