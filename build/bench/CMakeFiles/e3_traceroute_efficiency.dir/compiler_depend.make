# Empty compiler generated dependencies file for e3_traceroute_efficiency.
# This may be replaced when dependencies are built.
