file(REMOVE_RECURSE
  "CMakeFiles/fig07_hijack_prediction.dir/fig07_hijack_prediction.cpp.o"
  "CMakeFiles/fig07_hijack_prediction.dir/fig07_hijack_prediction.cpp.o.d"
  "fig07_hijack_prediction"
  "fig07_hijack_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hijack_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
