# Empty compiler generated dependencies file for fig07_hijack_prediction.
# This may be replaced when dependencies are built.
