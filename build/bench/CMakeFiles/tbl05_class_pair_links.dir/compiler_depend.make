# Empty compiler generated dependencies file for tbl05_class_pair_links.
# This may be replaced when dependencies are built.
