file(REMOVE_RECURSE
  "CMakeFiles/tbl05_class_pair_links.dir/tbl05_class_pair_links.cpp.o"
  "CMakeFiles/tbl05_class_pair_links.dir/tbl05_class_pair_links.cpp.o.d"
  "tbl05_class_pair_links"
  "tbl05_class_pair_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl05_class_pair_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
