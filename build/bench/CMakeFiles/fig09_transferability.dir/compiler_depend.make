# Empty compiler generated dependencies file for fig09_transferability.
# This may be replaced when dependencies are built.
