file(REMOVE_RECURSE
  "CMakeFiles/fig09_transferability.dir/fig09_transferability.cpp.o"
  "CMakeFiles/fig09_transferability.dir/fig09_transferability.cpp.o.d"
  "fig09_transferability"
  "fig09_transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
