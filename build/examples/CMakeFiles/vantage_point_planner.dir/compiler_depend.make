# Empty compiler generated dependencies file for vantage_point_planner.
# This may be replaced when dependencies are built.
