file(REMOVE_RECURSE
  "CMakeFiles/vantage_point_planner.dir/vantage_point_planner.cpp.o"
  "CMakeFiles/vantage_point_planner.dir/vantage_point_planner.cpp.o.d"
  "vantage_point_planner"
  "vantage_point_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vantage_point_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
