file(REMOVE_RECURSE
  "CMakeFiles/flattening_study.dir/flattening_study.cpp.o"
  "CMakeFiles/flattening_study.dir/flattening_study.cpp.o.d"
  "flattening_study"
  "flattening_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flattening_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
