# Empty compiler generated dependencies file for flattening_study.
# This may be replaced when dependencies are built.
