# Empty dependencies file for hijack_forecast.
# This may be replaced when dependencies are built.
