file(REMOVE_RECURSE
  "CMakeFiles/hijack_forecast.dir/hijack_forecast.cpp.o"
  "CMakeFiles/hijack_forecast.dir/hijack_forecast.cpp.o.d"
  "hijack_forecast"
  "hijack_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hijack_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
